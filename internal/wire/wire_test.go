package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/graph"
)

// TestEventsRoundTrip drives random event batches through frame + payload
// encode/decode and requires bit equality.
func TestEventsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		events := make([]graph.Event, n)
		for i := range events {
			events[i] = graph.Event{
				U:    int32(rng.Intn(1 << 20)),
				V:    int32(rng.Intn(1 << 20)),
				Type: graph.EventType(rng.Intn(2)),
			}
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, EncodeEvents(events)); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEvents(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(events) {
			t.Fatalf("decoded %d events, want %d", len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
			}
		}
	}
}

// TestStreamOfFrames checks that concatenated frames decode in order and
// the stream ends with a clean io.EOF.
func TestStreamOfFrames(t *testing.T) {
	var buf bytes.Buffer
	batches := [][]graph.Event{
		{{U: 1, V: 2, Type: graph.Insert}},
		{{U: 3, V: 4, Type: graph.Delete}, {U: 5, V: 6, Type: graph.Insert}},
		{},
	}
	for _, b := range batches {
		if err := WriteFrame(&buf, EncodeEvents(b)); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range batches {
		payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeEvents(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d events, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// TestRecsAndMatrixRoundTrip round-trips the read-path payloads,
// including NaN/Inf scores (must survive bit-exactly).
func TestRecsAndMatrixRoundTrip(t *testing.T) {
	recs := []Rec{{Node: 7, Score: 3.25}, {Node: 9, Score: math.Inf(1)}, {Node: 2, Score: -0.0}}
	v, src, got, err := DecodeRecs(EncodeRecs(42, 3, recs))
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 || src != 3 || len(got) != 3 {
		t.Fatalf("decoded version=%d source=%d n=%d", v, src, len(got))
	}
	for i := range recs {
		if math.Float64bits(got[i].Score) != math.Float64bits(recs[i].Score) || got[i].Node != recs[i].Node {
			t.Fatalf("rec %d diverged: %+v != %+v", i, got[i], recs[i])
		}
	}

	rows := [][]float64{{1, 2, 3}, {4, 5, math.NaN()}}
	mv, mrows, err := DecodeMatrix(EncodeMatrix(9, rows))
	if err != nil {
		t.Fatal(err)
	}
	if mv != 9 || len(mrows) != 2 || len(mrows[0]) != 3 {
		t.Fatalf("matrix decoded to version=%d shape=%dx%d", mv, len(mrows), len(mrows[0]))
	}
	if math.Float64bits(mrows[1][2]) != math.Float64bits(math.NaN()) {
		t.Fatal("NaN did not survive the round trip")
	}

	res := ApplyResult{Batches: 3, Events: 17, Rebuilt: 2, Version: 11}
	back, err := DecodeApplyResult(EncodeApplyResult(res))
	if err != nil {
		t.Fatal(err)
	}
	if back != res {
		t.Fatalf("apply result %+v != %+v", back, res)
	}
}

// TestCorruptionDetection flips bits, truncates, and lies about lengths;
// every case must surface as ErrCorruptFrame or io.ErrUnexpectedEOF,
// never a silent mis-decode.
func TestCorruptionDetection(t *testing.T) {
	events := []graph.Event{{U: 1, V: 2, Type: graph.Insert}, {U: 3, V: 4, Type: graph.Delete}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, EncodeEvents(events)); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Bit flip in every byte position, one at a time.
	for i := range clean {
		bad := append([]byte(nil), clean...)
		bad[i] ^= 0x40
		payload, err := ReadFrame(bytes.NewReader(bad))
		if err == nil {
			// A flip inside the length prefix can still frame-verify only if
			// the CRC happens to match — it cannot, so decode must fail.
			if _, derr := DecodeEvents(payload); derr == nil {
				t.Fatalf("bit flip at %d went undetected", i)
			}
		}
	}

	// Truncation at every boundary short of the footer.
	for cut := 1; cut < len(clean); cut++ {
		_, err := ReadFrame(bytes.NewReader(clean[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
	}

	// A hostile length prefix must be bounded, not allocated.
	var hostile bytes.Buffer
	hostile.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&hostile); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("hostile length prefix: %v, want ErrCorruptFrame", err)
	}

	// Malformed payloads: wrong tag, short body, trailing garbage,
	// count lying about the body size.
	if _, err := DecodeEvents([]byte{'X', 0, 0, 0, 0}); err == nil {
		t.Fatal("wrong tag accepted")
	}
	if _, err := DecodeEvents([]byte{'E', 10, 0, 0, 0}); err == nil {
		t.Fatal("oversized count accepted")
	}
	if _, err := DecodeEvents(append(EncodeEvents(events), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, _, _, err := DecodeRecs(EncodeEvents(events)); err == nil {
		t.Fatal("cross-tag decode accepted")
	}
}
