package core

import (
	"fmt"
	"math"
)

// AuditShapes verifies the tree's cached structures against the matrix it
// wraps and the geometry its configuration implies: one level-1 cache per
// block with |S|-row Ū matrices and sane tail energies, upper-level cache
// slices sized by levelCounts, and a root whose dimensions agree with its
// spectrum. O(levels) — cheap enough for per-update self-checks.
func (t *Tree) AuditShapes() error {
	if len(t.level1) != t.m.NumBlocks() {
		return fmt.Errorf("core: audit: %d level-1 caches for %d blocks", len(t.level1), t.m.NumBlocks())
	}
	for j, c := range t.level1 {
		if c == nil {
			if t.built {
				return fmt.Errorf("core: audit: built tree missing level-1 cache %d", j)
			}
			continue
		}
		if c.us == nil || c.us.Rows != t.m.Rows() {
			return fmt.Errorf("core: audit: level-1 cache %d has wrong shape (want %d rows)", j, t.m.Rows())
		}
		if math.IsNaN(c.tail) || c.tail < 0 {
			return fmt.Errorf("core: audit: level-1 cache %d has invalid tail energy %g", j, c.tail)
		}
	}
	if !t.built {
		return nil
	}
	counts := t.levelCounts()
	if want := max(len(counts)-2, 0); len(t.upper) != want && !(len(t.upper) == 0 && want == 0) {
		return fmt.Errorf("core: audit: %d upper levels cached, geometry has %d", len(t.upper), want)
	}
	for li, level := range t.upper {
		if len(level) != counts[li+1] {
			return fmt.Errorf("core: audit: upper level %d has %d nodes, want %d", li, len(level), counts[li+1])
		}
		for j, us := range level {
			if us == nil || us.Rows != t.m.Rows() {
				return fmt.Errorf("core: audit: upper cache (%d,%d) missing or wrong shape", li, j)
			}
		}
	}
	root := t.root
	switch {
	case root == nil:
		return fmt.Errorf("core: audit: built tree has no root")
	case root.U == nil || root.U.Rows != t.m.Rows():
		return fmt.Errorf("core: audit: root U missing or wrong shape (want %d rows)", t.m.Rows())
	case root.U.Cols != len(root.S):
		return fmt.Errorf("core: audit: root has %d left vectors for %d singular values", root.U.Cols, len(root.S))
	case root.Rank() > t.cfg.Rank:
		return fmt.Errorf("core: audit: root rank %d exceeds configured rank %d", root.Rank(), t.cfg.Rank)
	}
	for i, s := range root.S {
		if math.IsNaN(s) || s < 0 {
			return fmt.Errorf("core: audit: root singular value %d is %g", i, s)
		}
		if i > 0 && s > root.S[i-1] {
			return fmt.Errorf("core: audit: root spectrum not descending at %d (%g > %g)", i, s, root.S[i-1])
		}
	}
	return nil
}

// AuditBlock re-derives level-1 block j's cached factorization from first
// principles: it reconstructs the block as it stood at the cache's rebuild
// (the DynRow baseline), re-runs the randomized SVD at the seed recorded
// in the cache, and demands Ū and the tail energy match. A mismatch means
// either the baseline bookkeeping or the cache went stale without the
// Eqn. 2 trigger noticing.
//
// Caches without seed provenance (seq < 0) cannot be replayed. Those that
// carry full factors — produced by the incremental update path — are
// audited by their residual bound instead: ‖B_baseline − U·Σ·Vᵀ‖_F must
// stay within the recorded tail energy, and Ū must equal U·Σ. Restored
// caches with neither provenance nor factors are skipped. O(block
// factorization) — harness use only.
func (t *Tree) AuditBlock(j int) error {
	if j < 0 || j >= len(t.level1) {
		return fmt.Errorf("core: audit: block %d outside [0,%d)", j, len(t.level1))
	}
	c := t.level1[j]
	if c == nil {
		return nil
	}
	if c.seq < 0 {
		if c.fac == nil {
			return nil
		}
		return t.auditUpdatedBlock(j, c)
	}
	ref, err := t.factorCSR(t.m.BaselineBlockCSR(j), j, c.seq, 1)
	if err != nil {
		return fmt.Errorf("core: audit: re-factoring block %d: %w", j, err)
	}
	if ref.us.Rows != c.us.Rows || ref.us.Cols != c.us.Cols {
		return fmt.Errorf("core: audit: block %d cache is %d×%d, replay produced %d×%d",
			j, c.us.Rows, c.us.Cols, ref.us.Rows, ref.us.Cols)
	}
	// The randomized draw is pinned by the seed and independent of the
	// worker budget, so the replay should be bit-identical; the tolerance
	// only absorbs non-associative float reductions.
	const tol = 1e-9
	if d := math.Abs(ref.tail - c.tail); d > tol*(1+math.Abs(ref.tail)) {
		return fmt.Errorf("core: audit: block %d tail energy %g, replay %g", j, c.tail, ref.tail)
	}
	for r := 0; r < ref.us.Rows; r++ {
		want, got := ref.us.Row(r), c.us.Row(r)
		for i := range want {
			if d := math.Abs(want[i] - got[i]); d > tol*(1+math.Abs(want[i])) {
				return fmt.Errorf("core: audit: block %d cache diverges from replay at (%d,%d): %g vs %g",
					j, r, i, got[i], want[i])
			}
		}
	}
	return nil
}

// auditUpdatedBlock checks a cache produced by the incremental update
// path against its contract: the retained factors reconstruct the block's
// baseline to within the recorded tail energy (a triangle-inequality upper
// bound, exact at the last full factorization plus the accumulated
// discarded mass since), and the level-2 input Ū is exactly U·Σ.
// Materializes the block densely — harness use only.
func (t *Tree) auditUpdatedBlock(j int, c *blockCache) error {
	if c.updErr > c.tail+1e-12 {
		return fmt.Errorf("core: audit: block %d accumulated update error %g exceeds tail %g", j, c.updErr, c.tail)
	}
	rec := c.fac.Reconstruct()
	blk := t.m.BaselineBlockCSR(j)
	if rec.Rows != blk.Rows || rec.Cols != blk.Cols {
		return fmt.Errorf("core: audit: block %d factors reconstruct %d×%d, block is %d×%d",
			j, rec.Rows, rec.Cols, blk.Rows, blk.Cols)
	}
	for r := 0; r < blk.Rows; r++ {
		row := rec.Row(r)
		for p := blk.RowPtr[r]; p < blk.RowPtr[r+1]; p++ {
			row[blk.ColIdx[p]] -= blk.Val[p]
		}
	}
	// The bound is conservative, so only a clear violation is an error; the
	// slack absorbs float reductions on top of the recorded tail.
	const tol = 1e-9
	if resid := rec.FrobNorm(); resid > c.tail*(1+tol)+tol {
		return fmt.Errorf("core: audit: block %d residual %g exceeds recorded tail %g", j, resid, c.tail)
	}
	us := c.fac.US()
	if us.Rows != c.us.Rows || us.Cols != c.us.Cols {
		return fmt.Errorf("core: audit: block %d Ū is %d×%d, factors give %d×%d",
			j, c.us.Rows, c.us.Cols, us.Rows, us.Cols)
	}
	for i := range us.Data {
		if d := math.Abs(us.Data[i] - c.us.Data[i]); d > 1e-12*(1+math.Abs(us.Data[i])) {
			return fmt.Errorf("core: audit: block %d Ū diverges from U·Σ at flat index %d", j, i)
		}
	}
	return nil
}

// AuditBlocks runs AuditBlock over every level-1 block.
func (t *Tree) AuditBlocks() error {
	for j := range t.level1 {
		if err := t.AuditBlock(j); err != nil {
			return err
		}
	}
	return nil
}
