package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/client"
	"github.com/tree-svd/treesvd/internal/faultfs"
	"github.com/tree-svd/treesvd/internal/wal"
	"github.com/tree-svd/treesvd/internal/wire"
	"github.com/tree-svd/treesvd/server"
)

// holdIngestSlot opens a streaming ingest request and keeps its frame
// stream open, pinning one ingest admission slot until release is
// called. It returns once the server has accepted the first frame, so
// the slot is provably held.
func holdIngestSlot(t *testing.T, url string) (release func()) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/events", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// One frame in: the handler is inside the gate, reading for more.
	var frame []byte
	frame = appendFrame(frame, []treesvd.Event{{U: 1, V: 2, Type: treesvd.Insert}})
	if _, err := pw.Write(frame); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the server consume the frame
	return func() {
		pw.Close()
		<-done
	}
}

func appendFrame(dst []byte, events []treesvd.Event) []byte {
	var buf bytesBuffer
	wire.WriteFrame(&buf, wire.EncodeEvents(events))
	return append(dst, buf.b...)
}

// bytesBuffer is a minimal io.Writer (avoids importing bytes just for
// this).
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

// TestIngestShedsWhenSaturated pins the single ingest slot with a
// streaming request and asserts the next ingest is shed: HTTP 503 with
// both Retry-After forms on the wire, the typed *treesvd.OverloadError
// out of the client SDK, and a TraceShed event naming the gate.
func TestIngestShedsWhenSaturated(t *testing.T) {
	g := buildGraph(rand.New(rand.NewSource(11)), 40, 160)
	emb, err := treesvd.New(g, testSubset, treesvd.Config{Dim: 4, MaxNodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var sheds atomic.Int64
	srv := server.New(emb, server.Options{
		Admission: server.AdmissionConfig{
			IngestSlots: 1, QueueDepth: -1, // no queue: shed the instant the slot is busy
			RetryAfter: 80 * time.Millisecond,
		},
		Trace: func(ev treesvd.TraceEvent) {
			if ev.Kind == treesvd.TraceShed && ev.Endpoint == "ingest" {
				sheds.Add(1)
			}
		},
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	release := holdIngestSlot(t, srv.URL())
	defer release()

	// Raw request: inspect the wire form of the shed.
	resp, err := http.Post(srv.URL()+"/v1/events", "application/json",
		nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want the 80ms hint rounded up to 1s", resp.Header.Get("Retry-After"))
	}
	if resp.Header.Get(wire.RetryAfterHeader) != "80" {
		t.Fatalf("%s = %q, want 80", wire.RetryAfterHeader, resp.Header.Get(wire.RetryAfterHeader))
	}

	// Typed form through the SDK (retries off so the shed surfaces).
	c := client.New(srv.URL(), client.WithRetries(0))
	_, err = c.ApplyEvents(context.Background(), []treesvd.Event{{U: 3, V: 4, Type: treesvd.Insert}})
	var ove *treesvd.OverloadError
	if !errors.As(err, &ove) || ove.Endpoint != "ingest" || ove.RetryAfter != 80*time.Millisecond {
		t.Fatalf("want *OverloadError{ingest, 80ms}, got %v", err)
	}
	if sheds.Load() < 2 {
		t.Fatalf("TraceShed fired %d times, want >= 2", sheds.Load())
	}

	// Releasing the slot restores ingest.
	release()
	if _, err := c.ApplyEvents(context.Background(), []treesvd.Event{{U: 3, V: 4, Type: treesvd.Insert}}); err != nil {
		t.Fatalf("ingest after release: %v", err)
	}
	if err := emb.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestTimeoutHeaderPropagates asserts X-Timeout-Ms becomes the handler
// context's deadline: the SDK stamps it from the caller's context, the
// server folds it in, and the ingestor observes it.
func TestTimeoutHeaderPropagates(t *testing.T) {
	g := buildGraph(rand.New(rand.NewSource(11)), 40, 160)
	emb, err := treesvd.New(g, testSubset, treesvd.Config{Dim: 4, MaxNodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var sawDeadline atomic.Bool
	capture := ingestorFunc(func(ctx context.Context, events []treesvd.Event) (int, error) {
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) > 0 && time.Until(dl) <= 5*time.Second {
			sawDeadline.Store(true)
		}
		return emb.ApplyEvents(ctx, events)
	})
	srv := server.New(emb, server.Options{Ingest: capture})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c := client.New(srv.URL(), client.WithRetries(0))
	if _, err := c.ApplyEvents(ctx, []treesvd.Event{{U: 1, V: 2, Type: treesvd.Insert}}); err != nil {
		t.Fatal(err)
	}
	if !sawDeadline.Load() {
		t.Fatal("the handler context never carried the caller's deadline")
	}
}

// ingestorFunc adapts a function to server.Ingestor.
type ingestorFunc func(context.Context, []treesvd.Event) (int, error)

func (f ingestorFunc) ApplyEvents(ctx context.Context, events []treesvd.Event) (int, error) {
	return f(ctx, events)
}

// TestHealthAndReadiness walks /healthz and /readyz through the ready →
// draining transition: liveness never flips, readiness does.
func TestHealthAndReadiness(t *testing.T) {
	_, srv := newTestServer(t, treesvd.Config{Dim: 4, MaxNodes: 256})

	get := func(path string) (int, wire.HealthDTO) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var dto wire.HealthDTO
		data, _ := io.ReadAll(resp.Body)
		if err := json.Unmarshal(data, &dto); err != nil {
			t.Fatalf("%s body %q: %v", path, data, err)
		}
		return resp.StatusCode, dto
	}
	if code, dto := get("/healthz"); code != 200 || dto.Status != "ok" {
		t.Fatalf("healthz = %d %q", code, dto.Status)
	}
	if code, dto := get("/readyz"); code != 200 || dto.Status != "ready" {
		t.Fatalf("readyz = %d %q", code, dto.Status)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The listener is gone; probe the handler directly, the way a sidecar
	// sharing the process would.
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var dto wire.HealthDTO
	if err := json.Unmarshal(rr.Body.Bytes(), &dto); err != nil {
		t.Fatal(err)
	}
	if rr.Code != http.StatusServiceUnavailable || dto.Status != "draining" {
		t.Fatalf("readyz after shutdown = %d %q, want 503 draining", rr.Code, dto.Status)
	}
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz after shutdown = %d, want 200 (liveness is not readiness)", rr.Code)
	}
}

// TestDegradedEndToEnd drives the whole degradation story over HTTP: a
// disk-full WAL append seals the durable embedder; ingest answers a
// typed 503, reads keep serving, /readyz reports degraded; after the
// operator clears the fault and calls Reopen, everything recovers.
func TestDegradedEndToEnd(t *testing.T) {
	g := buildGraph(rand.New(rand.NewSource(11)), 40, 160)
	cfg := treesvd.DurableConfig{Config: treesvd.Config{Dim: 4, MaxNodes: 256}}

	// Calibrate: count the filesystem ops Create costs, so the fault can
	// be scripted to fire on the first ingest append after it.
	probe := faultfs.Wrap(wal.OS, faultfs.Plan{FailAt: 1 << 30, Mode: faultfs.DiskFull})
	d0, err := treesvd.CreateWithFS(probe, t.TempDir(), g.Clone(), testSubset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	createOps := probe.Ops()
	d0.Close()

	ffs := faultfs.Wrap(wal.OS, faultfs.Plan{FailAt: createOps + 1, Mode: faultfs.DiskFull})
	d, err := treesvd.CreateWithFS(ffs, t.TempDir(), g.Clone(), testSubset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := server.New(d.Embedder(), server.Options{Ingest: d})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	c := client.New(srv.URL(), client.WithRetries(0))
	ctx := context.Background()

	// The first logged batch hits the full disk: typed 503.
	batch := []treesvd.Event{{U: 1, V: 2, Type: treesvd.Insert}}
	_, err = c.ApplyEvents(ctx, batch)
	var dge *treesvd.DegradedError
	if !errors.As(err, &dge) {
		t.Fatalf("want *DegradedError over the wire, got %v", err)
	}
	if !ffs.Fired() {
		t.Fatal("the disk-full fault never fired")
	}

	// Reads keep serving the pre-fault snapshot.
	if _, err := c.Embedding(ctx); err != nil {
		t.Fatalf("reads must survive degraded mode: %v", err)
	}

	// /readyz tells the operator.
	resp, err := http.Get(srv.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var dto wire.HealthDTO
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(data, &dto); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || dto.Status != "degraded" || dto.Reason == "" {
		t.Fatalf("readyz = %d %+v, want 503 degraded with a reason", resp.StatusCode, dto)
	}

	// Operator runbook: free space, Reopen, back in business.
	ffs.Clear()
	if err := d.Reopen(); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if resp, err := http.Get(srv.URL() + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after Reopen: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if _, err := c.ApplyEvents(ctx, batch); err != nil {
		t.Fatalf("ingest after Reopen: %v", err)
	}
}

// TestOverloadAtTwiceKnee is the overload characterization (run by
// `make chaos` alongside the netfault storm). The ingest handler is
// given a fixed service time, which puts the knee at exactly
// slots/serviceTime; a concurrent burst far past that knee must degrade
// gracefully — accepted requests stay fast (p99 within 3× the unloaded
// p99 plus the queue wait), sheds are fast O(1) rejections, and nothing
// hangs.
func TestOverloadAtTwiceKnee(t *testing.T) {
	const (
		serviceTime = 5 * time.Millisecond
		queueWait   = 10 * time.Millisecond
		slack       = 100 * time.Millisecond // scheduler noise budget on tiny CI boxes
	)
	g := buildGraph(rand.New(rand.NewSource(11)), 40, 160)
	emb, err := treesvd.New(g, testSubset, treesvd.Config{Dim: 4, MaxNodes: 256})
	if err != nil {
		t.Fatal(err)
	}
	slow := ingestorFunc(func(ctx context.Context, events []treesvd.Event) (int, error) {
		time.Sleep(serviceTime)
		return emb.ApplyEvents(ctx, events)
	})
	srv := server.New(emb, server.Options{
		Ingest: slow,
		Admission: server.AdmissionConfig{
			IngestSlots: 2, QueueDepth: 2, QueueWait: queueWait, RetryAfter: 20 * time.Millisecond,
		},
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ctx := context.Background()
	oneEvent := []treesvd.Event{{U: 1, V: 2, Type: treesvd.Insert}}

	// Phase 1 — unloaded baseline, sequential.
	c := client.New(srv.URL(), client.WithRetries(0))
	var unloaded []time.Duration
	for i := 0; i < 40; i++ {
		start := time.Now()
		if _, err := c.ApplyEvents(ctx, oneEvent); err != nil {
			t.Fatalf("unloaded request %d: %v", i, err)
		}
		unloaded = append(unloaded, time.Since(start))
	}
	unloadedP99 := quantileDur(unloaded, 0.99)

	// Phase 2 — burst far past the 2-slot knee.
	const (
		workers = 32
		perW    = 8
	)
	var (
		mu            sync.Mutex
		accepted      []time.Duration
		shed          []time.Duration
		wg            sync.WaitGroup
		otherFailures atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := client.New(srv.URL(), client.WithRetries(0))
			for i := 0; i < perW; i++ {
				start := time.Now()
				_, err := c.ApplyEvents(ctx, oneEvent)
				d := time.Since(start)
				mu.Lock()
				switch {
				case err == nil:
					accepted = append(accepted, d)
				default:
					var ove *treesvd.OverloadError
					if errors.As(err, &ove) {
						shed = append(shed, d)
					} else {
						otherFailures.Add(1)
					}
				}
				mu.Unlock()
			}
		}(int64(w))
	}
	wg.Wait()

	if len(accepted) == 0 {
		t.Fatal("overload accepted nothing — the gate is rejecting everything")
	}
	if len(shed) == 0 {
		t.Fatalf("no request was shed at %d-way concurrency over 2 slots", workers)
	}
	if n := otherFailures.Load(); n > 0 {
		t.Fatalf("%d requests failed with something other than a shed", n)
	}
	acceptedP99 := quantileDur(accepted, 0.99)
	shedP99 := quantileDur(shed, 0.99)
	if limit := 3*unloadedP99 + queueWait + slack; acceptedP99 > limit {
		t.Fatalf("accepted p99 %v exceeds %v (3x unloaded %v + queue wait + slack): overload is not shedding early enough",
			acceptedP99, limit, unloadedP99)
	}
	if limit := queueWait + slack; shedP99 > limit {
		t.Fatalf("shed p99 %v exceeds %v: rejections must be fast", shedP99, limit)
	}
	t.Logf("overload: %d accepted (p99 %v, unloaded p99 %v), %d shed (p99 %v)",
		len(accepted), acceptedP99, unloadedP99, len(shed), shedP99)
}

// TestShutdownDropsNoAcceptedRequest fires a burst of reads while the
// server concurrently begins graceful shutdown. Each request must see a
// clean outcome: either it was never accepted (dial/transport error —
// the listener had closed) or it completes with a full, well-formed
// response. A truncated body or a reset mid-response is a dropped
// accepted request, which graceful drain exists to prevent.
func TestShutdownDropsNoAcceptedRequest(t *testing.T) {
	_, srv := newTestServer(t, treesvd.Config{Dim: 4, MaxNodes: 256})
	url := srv.URL()

	const inFlight = 50
	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		refused   atomic.Int64
		dropped   atomic.Int64
	)
	start := make(chan struct{})
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Get(url + "/v1/embedding")
			if err != nil {
				refused.Add(1) // never accepted: a clean refusal
				return
			}
			defer resp.Body.Close()
			if _, err := io.ReadAll(resp.Body); err != nil {
				dropped.Add(1) // accepted, then truncated: the bug
				return
			}
			completed.Add(1)
		}()
	}
	close(start)
	// Shutdown races the burst deliberately.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown during burst: %v", err)
	}
	wg.Wait()

	if dropped.Load() != 0 {
		t.Fatalf("%d accepted requests were dropped mid-response (completed %d, refused %d)",
			dropped.Load(), completed.Load(), refused.Load())
	}
	t.Logf("shutdown race: %d completed, %d refused, 0 dropped", completed.Load(), refused.Load())
}

// quantileDur returns the q-quantile of ds by sorting a copy.
func quantileDur(ds []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if len(s) == 0 {
		return 0
	}
	i := int(q * float64(len(s)-1))
	return s[i]
}
