// Package faultfs wraps a wal.FS with deterministic fault injection: it
// counts the mutating operations flowing through it and, at a scripted
// operation index, simulates the failure modes a durability layer must
// survive — a process crash with a torn write, loss of data that was
// never fsynced, a silent bit flip, or an fsync error. Sweeping the fault
// index from 1 until a run completes untouched visits every crash point
// of a workload exactly once, which is how the crash-point matrix test
// drives it.
package faultfs

import (
	"errors"
	"fmt"
	"sync"
	"syscall"

	"github.com/tree-svd/treesvd/internal/wal"
)

// ErrInjected is returned by every operation the plan fails. After a
// Crash fires, all further operations — reads included — return it, the
// way a dead process performs no further I/O.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrDiskFull is returned by every mutating operation once a DiskFull
// plan fires, until Clear. It wraps syscall.ENOSPC so code matching the
// real-world errno (errors.Is(err, syscall.ENOSPC)) sees the injected
// fault the same way.
var ErrDiskFull = fmt.Errorf("faultfs: injected disk full: %w", syscall.ENOSPC)

// Mode selects the failure the plan injects.
type Mode int

const (
	// Crash fails the FailAt-th mutating operation and every operation
	// after it. A crashed write persists only TornFrac of its bytes; with
	// DropUnsynced, every file is also rolled back to its last-fsynced
	// length, modeling page-cache loss.
	Crash Mode = iota
	// BitFlip silently flips one bit in the FailAt-th write's payload and
	// carries on — media corruption the software never sees happen.
	BitFlip
	// SyncError makes the FailAt-th Sync/SyncDir fail without making the
	// data durable; the process keeps running.
	SyncError
	// DiskFull models ENOSPC: the disk fills at the FailAt-th write or
	// sync, and from then on every mutating operation fails with
	// ErrDiskFull while reads keep working — the process keeps running.
	// Clear drains the disk again (the operator freed space), after which
	// everything succeeds.
	DiskFull
)

func (m Mode) String() string {
	switch m {
	case Crash:
		return "crash"
	case BitFlip:
		return "bitflip"
	case SyncError:
		return "syncerr"
	case DiskFull:
		return "diskfull"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Plan scripts one fault.
type Plan struct {
	// FailAt is the 1-based index of the operation to fail; 0 disables
	// injection. Crash counts every mutating op (Create, Write, Sync,
	// Rename, Remove, Truncate, SyncDir); BitFlip counts only Writes;
	// SyncError counts only Sync/SyncDir; DiskFull counts Writes and
	// Sync/SyncDir (the ops a real ENOSPC surfaces on).
	FailAt int
	Mode   Mode
	// TornFrac is the fraction of a crashed write's bytes that still
	// reach the file (default 0.5; use a tiny positive value to round to
	// zero bytes).
	TornFrac float64
	// DropUnsynced rolls every tracked file back to its last-fsynced
	// length when the crash fires, modeling unflushed page-cache loss.
	DropUnsynced bool
}

// FS wraps an inner wal.FS with the plan's fault. Safe for concurrent
// use.
type FS struct {
	inner wal.FS
	plan  Plan

	mu      sync.Mutex
	ops     int
	fired   bool
	crashed bool
	full    bool // DiskFull fired and has not been Cleared
	// size and synced track, per path, the current length and the length
	// known durable (advanced by Sync), for DropUnsynced rollback. Only
	// files created through this FS are tracked; anything else is treated
	// as already durable.
	size   map[string]int64
	synced map[string]int64
}

// Wrap returns a fault-injecting view of inner.
func Wrap(inner wal.FS, plan Plan) *FS {
	if plan.TornFrac <= 0 || plan.TornFrac > 1 {
		plan.TornFrac = 0.5
	}
	return &FS{inner: inner, plan: plan, size: map[string]int64{}, synced: map[string]int64{}}
}

// Fired reports whether the planned fault has triggered.
func (f *FS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Crashed reports whether the FS is in the post-crash state.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops returns how many counted operations have run.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Full reports whether the FS is in the post-DiskFull state.
func (f *FS) Full() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.full
}

// Clear ends a DiskFull fault: the operator freed space, mutating
// operations succeed again. A no-op for every other mode.
func (f *FS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.full = false
}

// op categories for counting.
type opKind int

const (
	opWrite opKind = iota
	opSync
	opOther // Create, Rename, Remove, Truncate
)

// arm counts one mutating operation and decides its fate. It returns the
// action the caller must take; the crash rollback runs here.
func (f *FS) arm(kind opKind) (inject bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, ErrInjected
	}
	if f.full {
		// Every mutating op fails while the disk is full; arm is only
		// called for mutating ops, so no kind check is needed.
		return false, ErrDiskFull
	}
	counted := false
	switch f.plan.Mode {
	case Crash:
		counted = true
	case BitFlip:
		counted = kind == opWrite
	case SyncError:
		counted = kind == opSync
	case DiskFull:
		counted = kind == opWrite || kind == opSync
	}
	if !counted || f.plan.FailAt <= 0 {
		return false, nil
	}
	f.ops++
	if f.ops != f.plan.FailAt || f.fired {
		return false, nil
	}
	f.fired = true
	switch f.plan.Mode {
	case Crash:
		f.crashed = true
		if f.plan.DropUnsynced {
			f.rollbackLocked()
		}
		return true, nil
	case BitFlip, SyncError:
		return true, nil
	case DiskFull:
		f.full = true
		return false, ErrDiskFull
	}
	return false, nil
}

// rollbackLocked truncates every tracked file to its durable watermark.
// Caller holds f.mu.
func (f *FS) rollbackLocked() {
	for name, sz := range f.size {
		if syncedTo := f.synced[name]; syncedTo < sz {
			// Best effort: the crash already happened, errors here have
			// nobody to go to.
			_ = f.inner.Truncate(name, syncedTo)
			f.size[name] = syncedTo
		}
	}
}

// guard fails fast once crashed; used by the read-only operations, which
// are never counted.
func (f *FS) guard() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjected
	}
	return nil
}

func (f *FS) MkdirAll(dir string) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *FS) Create(name string) (wal.File, error) {
	if inject, err := f.arm(opOther); err != nil {
		return nil, err
	} else if inject {
		return nil, ErrInjected
	}
	fl, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.size[name] = 0
	f.synced[name] = 0
	f.mu.Unlock()
	return &file{fs: f, inner: fl, name: name, writable: true}, nil
}

func (f *FS) Open(name string) (wal.File, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	fl, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: fl, name: name}, nil
}

func (f *FS) ReadDir(dir string) ([]string, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

func (f *FS) Stat(name string) (int64, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	return f.inner.Stat(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if inject, err := f.arm(opOther); err != nil {
		return err
	} else if inject {
		return ErrInjected
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if sz, ok := f.size[oldpath]; ok {
		f.size[newpath] = sz
		f.synced[newpath] = f.synced[oldpath]
		delete(f.size, oldpath)
		delete(f.synced, oldpath)
	}
	f.mu.Unlock()
	return nil
}

func (f *FS) Remove(name string) error {
	if inject, err := f.arm(opOther); err != nil {
		return err
	} else if inject {
		return ErrInjected
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.size, name)
	delete(f.synced, name)
	f.mu.Unlock()
	return nil
}

func (f *FS) Truncate(name string, size int64) error {
	if inject, err := f.arm(opOther); err != nil {
		return err
	} else if inject {
		return ErrInjected
	}
	if err := f.inner.Truncate(name, size); err != nil {
		return err
	}
	f.mu.Lock()
	if _, ok := f.size[name]; ok {
		f.size[name] = size
		if f.synced[name] > size {
			f.synced[name] = size
		}
	}
	f.mu.Unlock()
	return nil
}

func (f *FS) SyncDir(dir string) error {
	if inject, err := f.arm(opSync); err != nil {
		return err
	} else if inject {
		// Crash and SyncError both fail the call without syncing.
		return ErrInjected
	}
	return f.inner.SyncDir(dir)
}

// file wraps a wal.File with write/sync accounting.
type file struct {
	fs       *FS
	inner    wal.File
	name     string
	writable bool
}

func (fl *file) Read(p []byte) (int, error) {
	if err := fl.fs.guard(); err != nil {
		return 0, err
	}
	return fl.inner.Read(p)
}

func (fl *file) Write(p []byte) (int, error) {
	inject, err := fl.fs.arm(opWrite)
	if err != nil {
		return 0, err
	}
	if inject {
		switch fl.fs.plan.Mode {
		case Crash:
			// Torn write: persist a prefix, then die. Under DropUnsynced
			// the prefix is skipped outright — it could never have been
			// fsynced, and arm already rolled every file back to its
			// durable watermark, so appending past it would punch a hole.
			if torn := int(float64(len(p)) * fl.fs.plan.TornFrac); torn > 0 && !fl.fs.plan.DropUnsynced {
				n, _ := fl.inner.Write(p[:torn])
				fl.track(n)
			}
			return 0, ErrInjected
		case BitFlip:
			if len(p) > 0 {
				flipped := append([]byte(nil), p...)
				flipped[len(flipped)/2] ^= 1 << 3
				n, werr := fl.inner.Write(flipped)
				fl.track(n)
				return n, werr
			}
		}
	}
	n, werr := fl.inner.Write(p)
	fl.track(n)
	return n, werr
}

// track advances the file's size bookkeeping by n written bytes.
func (fl *file) track(n int) {
	if n <= 0 || !fl.writable {
		return
	}
	fl.fs.mu.Lock()
	if _, ok := fl.fs.size[fl.name]; ok {
		fl.fs.size[fl.name] += int64(n)
	}
	fl.fs.mu.Unlock()
}

func (fl *file) Sync() error {
	inject, err := fl.fs.arm(opSync)
	if err != nil {
		return err
	}
	if inject {
		// Crash and SyncError both fail the call; neither makes the
		// pending bytes durable.
		return ErrInjected
	}
	if err := fl.inner.Sync(); err != nil {
		return err
	}
	if fl.writable {
		fl.fs.mu.Lock()
		if sz, ok := fl.fs.size[fl.name]; ok {
			fl.fs.synced[fl.name] = sz
		}
		fl.fs.mu.Unlock()
	}
	return nil
}

func (fl *file) Close() error {
	// Close is not a durability point and is never counted: a crashed FS
	// still lets Close run so tests do not leak descriptors.
	return fl.inner.Close()
}
