package core

import (
	"math/rand"
	"testing"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// TestParallelBuildMatchesSequential: the worker pool must not change the
// result — per-block seeds are position-derived, so the factorization is
// schedule-independent.
func TestParallelBuildMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cfgSeq := testConfig(4)
	m1 := sparse.NewDynRow(10, 64, cfgSeq.Blocks())
	fillLowRank(rng, m1, 4, 0.05, 0.7)
	m2 := sparse.NewDynRow(10, 64, cfgSeq.Blocks())
	for r := 0; r < 10; r++ {
		for _, c := range m1.RowColumns(r) {
			m2.Set(r, int(c), m1.Get(r, int(c)))
		}
	}
	tSeq := mustCore(NewTree(m1, cfgSeq))
	must0t(tSeq.Build(bgt))
	cfgPar := cfgSeq
	cfgPar.Workers = 4
	tPar := mustCore(NewTree(m2, cfgPar))
	must0t(tPar.Build(bgt))
	if d := linalg.MaxAbsDiff(tSeq.Embedding(), tPar.Embedding()); d > 1e-9 {
		t.Fatalf("parallel build diverges from sequential: %g", d)
	}
}

// TestParallelUpdateRace exercises the parallel update path under the race
// detector (run with -race).
func TestParallelUpdateRace(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := testConfig(4)
	cfg.Workers = 4
	cfg.Delta = 0.1
	m := sparse.NewDynRow(12, 128, cfg.Blocks())
	fillLowRank(rng, m, 4, 0.05, 0.5)
	tr := mustCore(NewTree(m, cfg))
	must0t(tr.Build(bgt))
	for round := 0; round < 5; round++ {
		for i := 0; i < 80; i++ {
			m.Set(rng.Intn(12), rng.Intn(128), rng.NormFloat64())
		}
		mustCore(tr.Update(bgt))
	}
	if tr.Root().Rank() == 0 {
		t.Fatal("parallel updates lost the factorization")
	}
}
