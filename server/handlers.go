package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/internal/wire"
)

// wantsBinary reports whether the request negotiated the binary frame
// codec for the response.
func wantsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.ContentType)
}

// writeJSON marshals v with the right content type.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeFrame writes one binary frame response.
func writeFrame(w http.ResponseWriter, payload []byte) {
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	wire.WriteFrame(w, payload)
}

// writeError maps an error to its HTTP status and typed JSON body. The
// error family of the facade crosses the wire losslessly: the client
// package reverses this mapping.
func writeError(w http.ResponseWriter, err error) int {
	dto := wire.ErrorDTO{Error: err.Error(), Kind: wire.KindInternal}
	status := http.StatusInternalServerError
	var (
		ike *treesvd.InvalidKError
		nis *treesvd.NotInSubsetError
		nre *treesvd.NodeRangeError
		ove *treesvd.OverloadError
		dge *treesvd.DegradedError
		bad *badRequestError
	)
	switch {
	case errors.As(err, &ike):
		status = http.StatusBadRequest
		dto.Kind, dto.K = wire.KindInvalidK, ike.K
	case errors.As(err, &nis):
		status = http.StatusNotFound
		dto.Kind, dto.Node, dto.Subset = wire.KindNotInSubset, nis.Node, nis.Subset
	case errors.As(err, &nre):
		status = http.StatusBadRequest
		dto.Kind, dto.Index, dto.Node, dto.MaxNodes = wire.KindNodeRange, nre.Index, nre.Node, nre.MaxNodes
	case errors.As(err, &ove):
		status = http.StatusServiceUnavailable
		dto.Kind, dto.Endpoint = wire.KindOverloaded, ove.Endpoint
		if ra := ove.RetryAfter; ra > 0 {
			dto.RetryAfterMs = max(ra.Milliseconds(), 1)
			// RFC 9110 Retry-After is whole seconds; round up so a naive
			// client never retries early. X-Retry-After-Ms keeps the
			// sub-second hint for our own SDK.
			w.Header().Set("Retry-After", strconv.FormatInt(int64((ra+time.Second-1)/time.Second), 10))
			w.Header().Set(wire.RetryAfterHeader, strconv.FormatInt(dto.RetryAfterMs, 10))
		}
	case errors.As(err, &dge):
		status = http.StatusServiceUnavailable
		dto.Kind, dto.Reason = wire.KindDegraded, dge.Reason
	case errors.As(err, &bad):
		status = http.StatusBadRequest
		dto.Kind = wire.KindBadRequest
	}
	writeJSON(w, status, dto)
	return status
}

// badRequestError marks malformed queries/bodies that have no richer
// typed form (missing parameter, unparsable number, bad JSON).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// statusWriter remembers the status code for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with admission control, caller-deadline
// propagation, the per-endpoint request counter, latency histogram,
// error counter and the shared in-flight gauge.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	em := s.met.endpoint(endpoint)
	g := s.gates[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Fold the caller's deadline budget into the handler context:
		// work the caller has given up on is abandoned server-side too,
		// and the admission queue will not hold a request past it.
		if raw := r.Header.Get(wire.TimeoutHeader); raw != "" {
			if ms, err := strconv.ParseInt(raw, 10, 64); err == nil && ms > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if release, err := g.acquire(r.Context()); err != nil {
			em.shed.Inc()
			if s.trace != nil {
				s.trace(treesvd.TraceEvent{Kind: treesvd.TraceShed, Endpoint: endpoint, Block: -1, Err: err})
			}
			writeError(sw, err)
		} else {
			s.met.inflight.Add(1)
			h(sw, r)
			s.met.inflight.Add(-1)
			release()
		}
		em.requests.Inc()
		if sw.status >= 400 {
			em.errors.Inc()
		}
		em.nanos.ObserveSince(start)
	}
}

// intParam parses a required (or defaulted) integer query parameter.
func intParam(r *http.Request, name string, def int, required bool) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		if required {
			return 0, badRequest("missing required query parameter %q", name)
		}
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("query parameter %q: %v", name, err)
	}
	return v, nil
}

// handleVersion serves the published snapshot version plus the live
// graph shape (via the race-safe GraphView — the reason that view
// exists).
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	snap := s.e.Snapshot()
	g := s.e.Graph()
	writeJSON(w, http.StatusOK, wire.VersionDTO{
		Version:    snap.Version(),
		NumNodes:   snap.NumNodes(),
		NumEdges:   g.NumEdges(),
		SubsetSize: len(s.subset),
		Shards:     s.e.NumShards(),
	})
}

// handleRecommend serves top-k candidates for one subset source, JSON or
// binary, entirely from one pinned snapshot.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	src, err := intParam(r, "source", 0, true)
	if err != nil {
		writeError(w, err)
		return
	}
	k, err := intParam(r, "k", 10, false)
	if err != nil {
		writeError(w, err)
		return
	}
	snap := s.e.Snapshot()
	recs, err := snap.Recommend(int32(src), k)
	if err != nil {
		writeError(w, err)
		return
	}
	if wantsBinary(r) {
		wrecs := make([]wire.Rec, len(recs))
		for i, rc := range recs {
			wrecs[i] = wire.Rec{Node: rc.Node, Score: rc.Score}
		}
		writeFrame(w, wire.EncodeRecs(snap.Version(), int32(src), wrecs))
		return
	}
	dto := wire.RecommendDTO{
		Version:         snap.Version(),
		Source:          int32(src),
		Recommendations: make([]wire.RecDTO, len(recs)),
	}
	for i, rc := range recs {
		dto.Recommendations[i] = wire.RecDTO{Node: rc.Node, Score: rc.Score}
	}
	writeJSON(w, http.StatusOK, dto)
}

// handleEmbedding serves the |S|×d subset embedding, or one row with
// ?node=S (404 with a typed body when S is not a subset node).
func (s *Server) handleEmbedding(w http.ResponseWriter, r *http.Request) {
	snap := s.e.Snapshot()
	if raw := r.URL.Query().Get("node"); raw != "" {
		node, err := intParam(r, "node", 0, true)
		if err != nil {
			writeError(w, err)
			return
		}
		row, ok := s.rowOf[int32(node)]
		if !ok {
			writeError(w, &treesvd.NotInSubsetError{Node: int32(node), Subset: len(s.subset)})
			return
		}
		rows := snap.Embedding()[row : row+1]
		s.writeMatrix(w, r, snap.Version(), []int32{int32(node)}, rows)
		return
	}
	s.writeMatrix(w, r, snap.Version(), snap.Subset(), snap.Embedding())
}

// handleRightEmbedding serves the n×d right embedding, or one row with
// ?node=V for any node that exists as of the pinned snapshot. Rows the
// MaxNodes headroom reserves beyond the snapshot's node count are not
// addressable — asking for one is a *NodeRangeError (400), matching the
// ingest-side capacity contract.
func (s *Server) handleRightEmbedding(w http.ResponseWriter, r *http.Request) {
	snap := s.e.Snapshot()
	y := snap.RightEmbedding()
	n := snap.NumNodes()
	if n < len(y) {
		y = y[:n]
	}
	if raw := r.URL.Query().Get("node"); raw != "" {
		node, err := intParam(r, "node", 0, true)
		if err != nil {
			writeError(w, err)
			return
		}
		if node < 0 || node >= len(y) {
			writeError(w, &treesvd.NodeRangeError{Node: int32(node), MaxNodes: len(y)})
			return
		}
		s.writeMatrix(w, r, snap.Version(), []int32{int32(node)}, y[node:node+1])
		return
	}
	nodes := make([]int32, len(y))
	for i := range nodes {
		nodes[i] = int32(i)
	}
	s.writeMatrix(w, r, snap.Version(), nodes, y)
}

// writeMatrix writes an embedding response in the negotiated codec.
func (s *Server) writeMatrix(w http.ResponseWriter, r *http.Request, version uint64, nodes []int32, rows [][]float64) {
	if wantsBinary(r) {
		writeFrame(w, wire.EncodeMatrix(version, rows))
		return
	}
	writeJSON(w, http.StatusOK, wire.MatrixDTO{Version: version, Nodes: nodes, Rows: rows})
}

// handleIngest applies event batches. A JSON body is one batch; a binary
// body (Content-Type: application/x-treesvd-frame) is a stream of event
// frames, each applied as its own batch as it arrives — the request
// doesn't buffer, so an open connection can feed the embedder
// continuously. Batches preceding a failed one stay applied (the same
// prefix semantics as WAL replay); the error response reports the typed
// cause.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var res wire.ApplyResult
	var err error
	if strings.Contains(r.Header.Get("Content-Type"), wire.ContentType) {
		res, err = s.ingestFrames(r)
	} else {
		res, err = s.ingestJSON(r)
	}
	res.Version = s.e.Version()
	if err != nil {
		writeError(w, err)
		return
	}
	s.met.ingestBatches.Add(uint64(res.Batches))
	s.met.ingestEvents.Add(uint64(res.Events))
	if wantsBinary(r) {
		writeFrame(w, wire.EncodeApplyResult(res))
		return
	}
	writeJSON(w, http.StatusOK, wire.ApplyDTO{
		Batches: res.Batches, Events: res.Events, Rebuilt: res.Rebuilt, Version: res.Version,
	})
}

// ingestJSON decodes and applies one JSON batch.
func (s *Server) ingestJSON(r *http.Request) (wire.ApplyResult, error) {
	var res wire.ApplyResult
	var dto wire.IngestDTO
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	if err := dec.Decode(&dto); err != nil {
		return res, badRequest("ingest body: %v", err)
	}
	if len(dto.Events) > s.maxBatch {
		return res, badRequest("batch of %d events exceeds the per-batch cap of %d", len(dto.Events), s.maxBatch)
	}
	events := make([]treesvd.Event, len(dto.Events))
	for i, ev := range dto.Events {
		switch ev.Type {
		case "insert":
			events[i] = treesvd.Event{U: ev.U, V: ev.V, Type: treesvd.Insert}
		case "delete":
			events[i] = treesvd.Event{U: ev.U, V: ev.V, Type: treesvd.Delete}
		default:
			return res, badRequest("event %d: unknown type %q (want \"insert\" or \"delete\")", i, ev.Type)
		}
	}
	rebuilt, err := s.ingest.ApplyEvents(r.Context(), events)
	if err != nil {
		return res, err
	}
	return wire.ApplyResult{Batches: 1, Events: len(events), Rebuilt: rebuilt}, nil
}

// ingestFrames reads binary event frames off the request body and
// applies each as one batch until the stream ends.
func (s *Server) ingestFrames(r *http.Request) (wire.ApplyResult, error) {
	var res wire.ApplyResult
	for {
		payload, err := wire.ReadFrame(r.Body)
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, badRequest("ingest frame %d: %v", res.Batches, err)
		}
		events, err := wire.DecodeEvents(payload)
		if err != nil {
			return res, badRequest("ingest frame %d: %v", res.Batches, err)
		}
		if len(events) > s.maxBatch {
			return res, badRequest("frame %d: batch of %d events exceeds the per-batch cap of %d",
				res.Batches, len(events), s.maxBatch)
		}
		rebuilt, err := s.ingest.ApplyEvents(r.Context(), events)
		if err != nil {
			return res, err
		}
		res.Batches++
		res.Events += len(events)
		res.Rebuilt += rebuilt
	}
}
