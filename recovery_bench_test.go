// Recovery benchmark suite (durability ISSUE satellite). `make
// bench-recovery` runs TestEmitRecoveryBench, which measures the durable
// wrapper's three cost centers with testing.Benchmark and writes
// BENCH_RECOVERY.json:
//
//   - checkpoint: one full synchronous checkpoint commit (state
//     serialization + tmp-write + fsync + rename + prune),
//   - apply/<policy>: ApplyEvents through the WAL under each fsync
//     policy, against the plain in-memory embedder as the baseline —
//     the acceptance bar is <10% overhead at fsync=batch,
//   - open/<n>: cold-start Open as a function of WAL length (replay of n
//     logged batches from checkpoint 0).
//
// The B-prefixed functions are plain `go test -bench` entry points for
// ad-hoc profiling of the same paths.
package treesvd

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/tree-svd/treesvd/internal/dataset"
	"github.com/tree-svd/treesvd/internal/wal"
)

// recoveryBenchStream builds the benchmark workload: a mid-size churn
// stream whose per-batch apply cost is representative (PPR pushes plus
// occasional block re-factorizations), so WAL overhead is measured
// against real update work rather than no-ops. The sizing matters for
// the fsync=batch acceptance bar: a batch must carry enough maintenance
// work (~ms) that one fsync (~100µs) amortizes, which is the paper's
// operating regime — per-batch fsync against toy batches measures the
// disk, not the log.
func recoveryBenchStream(nbatches int) (*Graph, []int32, [][]Event, Config) {
	subset := []int32{0, 7, 19, 42, 77, 123, 256, 391, 477, 512}
	initial, batches := dataset.GenerateChurn(dataset.ChurnProfile{
		Nodes: 600, MaxNodes: 620, Degree: 5,
		Batches: nbatches, BatchSize: 512,
		SelfLoopFrac: 0.05, DeleteFrac: 0.2, DupFrac: 0.05, MissFrac: 0.05, GrowFrac: 0.05,
		BigBatch: -1,
		Protect:  subset,
		Seed:     7,
	})
	cfg := Config{Dim: 16, Branch: 4, Levels: 3, MaxNodes: 620, Seed: 3}
	return initial, subset, batches, cfg
}

func BenchmarkCheckpoint(b *testing.B) {
	initial, subset, batches, cfg := recoveryBenchStream(8)
	d, err := Create(b.TempDir(), initial, subset, DurableConfig{
		Config: cfg, CheckpointEvery: -1, SyncCheckpoints: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	for _, batch := range batches {
		if _, err := d.ApplyEvents(bgt, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDurableApply(b *testing.B) {
	for _, p := range []SyncPolicy{SyncBatch, SyncInterval, SyncNone} {
		b.Run(p.String(), func(b *testing.B) {
			initial, subset, batches, cfg := recoveryBenchStream(16)
			d, err := Create(b.TempDir(), initial, subset, DurableConfig{
				Config: cfg, Sync: p, CheckpointEvery: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.ApplyEvents(bgt, batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOpenReplay(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("wal%d", n), func(b *testing.B) {
			initial, subset, batches, cfg := recoveryBenchStream(n)
			dcfg := DurableConfig{Config: cfg, CheckpointEvery: -1}
			dir := b.TempDir()
			d, err := Create(dir, initial, subset, dcfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, batch := range batches {
				if _, err := d.ApplyEvents(bgt, batch); err != nil {
					b.Fatal(err)
				}
			}
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := Open(dir, dcfg)
				if err != nil {
					b.Fatal(err)
				}
				if got := d.Recovery().ReplayedBatches; got != n {
					b.Fatalf("replayed %d batches, want %d", got, n)
				}
				d.Close()
			}
		})
	}
}

// recoveryRecord is one row of BENCH_RECOVERY.json.
type recoveryRecord struct {
	Op           string  `json:"op"`
	Detail       string  `json:"detail,omitempty"`
	WALBatches   int     `json:"wal_batches,omitempty"`
	NsOp         int64   `json:"ns_op"`
	AllocsOp     int64   `json:"allocs_op"`
	BytesOp      int64   `json:"bytes_op"`
	OverheadFrac float64 `json:"overhead_frac,omitempty"` // vs the plain embedder baseline
	CPUs         int     `json:"cpus"`
}

// TestEmitRecoveryBench writes the machine-readable recovery benchmark
// table when BENCH_RECOVERY_OUT names an output path (it is a no-op under
// plain `go test`). It also enforces the durability acceptance bar: the
// per-batch WAL overhead at fsync=batch must stay under 10% of the plain
// in-memory ApplyEvents cost.
func TestEmitRecoveryBench(t *testing.T) {
	out := os.Getenv("BENCH_RECOVERY_OUT")
	if out == "" {
		t.Skip("set BENCH_RECOVERY_OUT=path to emit BENCH_RECOVERY.json")
	}
	cpus := runtime.NumCPU()
	var recs []recoveryRecord
	add := func(op, detail string, walBatches int, fn func(b *testing.B)) *recoveryRecord {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		recs = append(recs, recoveryRecord{
			Op: op, Detail: detail, WALBatches: walBatches,
			NsOp: r.NsPerOp(), AllocsOp: r.AllocsPerOp(), BytesOp: r.AllocedBytesPerOp(),
			CPUs: cpus,
		})
		rec := &recs[len(recs)-1]
		t.Logf("%-12s %-10s %12d ns/op  %8d allocs/op  %12d B/op",
			op, detail, rec.NsOp, rec.AllocsOp, rec.BytesOp)
		return rec
	}

	// Baseline: the plain in-memory embedder on the identical stream.
	initial, subset, batches, cfg := recoveryBenchStream(16)
	plainEmb, err := New(initial.Clone(), subset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := add("apply", "plain", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plainEmb.ApplyEvents(bgt, batches[i%len(batches)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	// WAL overhead per fsync policy: the append path alone (encode +
	// checksummed write + policy fsync), measured directly on a log writer
	// rather than as the difference of two ApplyEvents runs — the apply
	// cost evolves with the graph state, so a subtraction of two
	// independently-sized benchmark runs is noise of the same order as the
	// quantity being measured. The overhead fraction is append cost over
	// the plain per-batch apply cost above.
	for _, p := range []SyncPolicy{SyncBatch, SyncInterval, SyncNone} {
		w, err := wal.NewWriter(wal.OS, t.TempDir(), 1, wal.Options{Sync: wal.SyncPolicy(p)})
		if err != nil {
			t.Fatal(err)
		}
		rec := add("wal-append", p.String(), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(wal.EncodeEvents(batches[i%len(batches)])); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rec.OverheadFrac = float64(rec.NsOp) / float64(plain.NsOp)
		t.Logf("wal-append %-10s overhead vs plain apply: %.2f%%", p, rec.OverheadFrac*100)
		if p == SyncBatch && rec.OverheadFrac > 0.10 {
			t.Errorf("WAL overhead at fsync=batch is %.1f%%, acceptance bar is 10%%",
				rec.OverheadFrac*100)
		}
	}

	// One synchronous checkpoint commit.
	{
		d, err := Create(t.TempDir(), initial.Clone(), subset, DurableConfig{
			Config: cfg, CheckpointEvery: -1, SyncCheckpoints: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range batches {
			if _, err := d.ApplyEvents(bgt, batch); err != nil {
				t.Fatal(err)
			}
		}
		add("checkpoint", "", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := d.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		})
		d.Close()
	}

	// Cold-start Open as a function of WAL length.
	for _, n := range []int{16, 64, 128} {
		initial, subset, batches, cfg := recoveryBenchStream(n)
		dcfg := DurableConfig{Config: cfg, CheckpointEvery: -1}
		dir := t.TempDir()
		d, err := Create(dir, initial, subset, dcfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range batches {
			if _, err := d.ApplyEvents(bgt, batch); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		add("open", "replay", n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := Open(dir, dcfg)
				if err != nil {
					b.Fatal(err)
				}
				if got := d.Recovery().ReplayedBatches; got != n {
					b.Fatalf("replayed %d batches, want %d", got, n)
				}
				d.Close()
			}
		})
	}

	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
