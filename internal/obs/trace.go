package obs

import "time"

// TraceKind identifies which pipeline event a TraceEvent reports.
type TraceKind uint8

// Trace event kinds, in the order a typical update emits them.
const (
	// TraceBatchStart fires at the top of ApplyEvents, before any state
	// is touched. Seq is the snapshot version the batch will publish,
	// Events the batch size.
	TraceBatchStart TraceKind = iota + 1
	// TraceBlockRecompute fires once per level-1 block re-factored by the
	// lazy update, from the worker goroutine that factored it. Block is
	// the block index, Dur the factorization time.
	TraceBlockRecompute
	// TraceBatchEnd fires when ApplyEvents finishes, success or not. Dur
	// is the whole batch, Rebuilt the number of blocks re-factored, Err
	// the batch's error (nil on success).
	TraceBatchEnd
	// TraceRebuild fires when a full Rebuild finishes (the Tree-SVD-S
	// fallback path), with Dur and Err.
	TraceRebuild
	// TraceCheckpoint fires when a durable checkpoint commit finishes —
	// from a background goroutine unless SyncCheckpoints is set. Seq is
	// the batch sequence the checkpoint covers.
	TraceCheckpoint
	// TraceRecovery fires once at the end of a successful Open, after
	// replay and audit. Seq is the recovered checkpoint's sequence,
	// Rebuilt the number of WAL batches replayed on top of it.
	TraceRecovery
	// TraceShed fires when the serving layer's admission control refuses
	// a request: every in-flight slot was taken and the wait queue (or
	// the request's deadline budget) was exhausted. Endpoint names the
	// gate, Dur how long the request waited before being shed.
	TraceShed
	// TraceDegraded fires on both edges of the durable layer's read-only
	// degraded mode: sealing (Err is the WAL I/O failure that caused it)
	// and reopening (Err nil). Seq is the WAL sequence the transition
	// happened at.
	TraceDegraded
	// TraceBlockUpdate fires once per level-1 block served by the
	// incremental (Brand-style) update path instead of a recompute, from
	// the worker goroutine that updated it. Block is the block index, Dur
	// the update time. Mutually exclusive with TraceBlockRecompute for a
	// given block within one batch.
	TraceBlockUpdate
)

// String returns the kind's name.
func (k TraceKind) String() string {
	switch k {
	case TraceBatchStart:
		return "batch-start"
	case TraceBlockRecompute:
		return "block-recompute"
	case TraceBatchEnd:
		return "batch-end"
	case TraceRebuild:
		return "rebuild"
	case TraceCheckpoint:
		return "checkpoint"
	case TraceRecovery:
		return "recovery"
	case TraceShed:
		return "shed"
	case TraceDegraded:
		return "degraded"
	case TraceBlockUpdate:
		return "block-update"
	}
	return "unknown"
}

// TraceEvent is the payload handed to a TraceHook. Only the fields
// documented on the respective TraceKind are meaningful; the rest are
// zero.
type TraceEvent struct {
	Kind     TraceKind
	Seq      uint64        // snapshot version / batch or checkpoint sequence
	Block    int           // block index (TraceBlockRecompute/TraceBlockUpdate), else -1
	Shard    int           // owning shard (TraceBlockRecompute/TraceBlockUpdate); 0 unsharded
	Events   int           // batch size (TraceBatchStart)
	Rebuilt  int           // blocks re-factored / batches replayed
	Endpoint string        // shedding admission gate (TraceShed), else ""
	Dur      time.Duration // duration of the completed phase
	Err      error         // terminal error of the phase, nil on success
}

// TraceHook receives pipeline trace events. A nil hook costs one branch
// per fire site; a non-nil hook runs inline on the pipeline's goroutines
// — including worker goroutines (TraceBlockRecompute fires concurrently
// from the factorization pool) and the background checkpoint goroutine —
// so implementations must be fast and safe for concurrent use.
//
// Ordering contract per update: exactly one TraceBatchStart, then zero or
// more TraceBlockRecompute/TraceBlockUpdate (concurrently), then exactly
// one TraceBatchEnd. TraceCheckpoint and TraceRecovery are emitted by the
// durable layer outside that bracket.
type TraceHook func(TraceEvent)
