package check

import (
	"fmt"

	"github.com/tree-svd/treesvd/internal/graph"
	"github.com/tree-svd/treesvd/internal/ppr"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// ShardView describes one shard of a sharded embedder for the
// cross-shard audit: its subset row range and the per-shard state the
// audit cross-checks against it.
type ShardView struct {
	// Lo, Hi is the shard's subset row range [Lo, Hi).
	Lo, Hi int
	// Sub is the shard's PPR subset (must cover exactly subset[Lo:Hi]).
	Sub *ppr.Subset
	// M is the shard's slice of the proximity matrix (Hi−Lo rows).
	M *sparse.DynRow
}

// Shards audits the invariants that hold between shards rather than
// inside one: the ranges tile [0, len(subset)) contiguously, every shard
// reads the same graph substrate, each shard's PPR subset is exactly its
// slice of the global subset, and all proximity slices agree on the
// column geometry (width and block count) so their roots can merge. The
// per-shard internals are audited separately (PPRSubset, DynRow, Tree).
func Shards(g *graph.Graph, subset []int32, views []ShardView) error {
	if len(views) == 0 {
		return fmt.Errorf("check: no shards")
	}
	next := 0
	for i, v := range views {
		if v.Lo != next || v.Hi < v.Lo {
			return fmt.Errorf("check: shard %d covers rows [%d,%d), want lo %d", i, v.Lo, v.Hi, next)
		}
		if v.Hi == v.Lo {
			return fmt.Errorf("check: shard %d is empty", i)
		}
		next = v.Hi
		if v.Sub == nil || v.M == nil {
			return fmt.Errorf("check: shard %d has nil state", i)
		}
		if v.Sub.Engine.G != g {
			return fmt.Errorf("check: shard %d reads a different graph substrate", i)
		}
		if len(v.Sub.S) != v.Hi-v.Lo {
			return fmt.Errorf("check: shard %d has %d sources for rows [%d,%d)", i, len(v.Sub.S), v.Lo, v.Hi)
		}
		for j, s := range v.Sub.S {
			if s != subset[v.Lo+j] {
				return fmt.Errorf("check: shard %d row %d embeds source %d, want subset[%d] = %d",
					i, j, s, v.Lo+j, subset[v.Lo+j])
			}
		}
		if v.M.Rows() != v.Hi-v.Lo {
			return fmt.Errorf("check: shard %d proximity has %d rows for range [%d,%d)", i, v.M.Rows(), v.Lo, v.Hi)
		}
		if v.M.Cols() != views[0].M.Cols() || v.M.NumBlocks() != views[0].M.NumBlocks() {
			return fmt.Errorf("check: shard %d proximity geometry %dx%d/%d blocks differs from shard 0's %dx%d/%d",
				i, v.M.Rows(), v.M.Cols(), v.M.NumBlocks(),
				views[0].M.Rows(), views[0].M.Cols(), views[0].M.NumBlocks())
		}
	}
	if next != len(subset) {
		return fmt.Errorf("check: shards cover %d of %d subset rows", next, len(subset))
	}
	return nil
}
