package core

import (
	"context"
	"math"

	"github.com/tree-svd/treesvd/internal/linalg"
	"github.com/tree-svd/treesvd/internal/par"
	"github.com/tree-svd/treesvd/internal/rsvd"
	"github.com/tree-svd/treesvd/internal/sparse"
)

// Factorize runs the static Tree-SVD (Algorithm 3, "Tree-SVD-S") over any
// rectangular sparse matrix — the paper notes the scheme is not limited to
// subset embedding and speeds up SVD for any c×n matrix with c ≪ n. It
// returns the root truncated SVD (U_{q,1})_d, (Σ_{q,1})_d.
//
// cfg.Workers is split like the dynamic tree's: level-1 blocks factor
// concurrently with the leftover budget inside each block's kernels, and
// the merge sweep narrows toward a root SVD that runs with the full
// budget.
func Factorize(m *sparse.CSR, cfg Config) (*linalg.SVDResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := par.Workers(cfg.Workers)
	nb := cfg.Blocks()
	if nb > m.Cols {
		nb = m.Cols
	}
	width := (m.Cols + nb - 1) / nb
	nb = (m.Cols + width - 1) / width
	level := make([]*linalg.Dense, nb)
	kb := splitBudget(w, nb)
	if err := par.ForErr(context.Background(), nb, w, func(j int) error {
		lo := j * width
		hi := lo + width
		if hi > m.Cols {
			hi = m.Cols
		}
		blk := m.SliceColsCSR(lo, hi)
		opts := rsvd.Options{
			Rank:       cfg.Rank,
			Oversample: cfg.Oversample,
			PowerIters: cfg.PowerIters,
			Seed:       cfg.Seed + int64(j)*1_000_003,
			Workers:    kb,
		}
		var res *linalg.SVDResult
		var err error
		if cfg.UseCountSketch {
			res, err = rsvd.SparseCW(blk, opts)
		} else {
			res, err = rsvd.Sparse(blk, opts)
		}
		if err != nil {
			return err
		}
		level[j] = res.US()
		return nil
	}); err != nil {
		return nil, err
	}
	for len(level) > 1 {
		parents := (len(level) + cfg.Branch - 1) / cfg.Branch
		mb := splitBudget(w, parents)
		next := make([]*linalg.Dense, parents)
		var rootRes *linalg.SVDResult
		par.For(parents, w, func(pi int) {
			lo := pi * cfg.Branch
			hi := lo + cfg.Branch
			if hi > len(level) {
				hi = len(level)
			}
			res := linalg.SVDTruncW(linalg.HCat(level[lo:hi]...), cfg.Rank, mb)
			if parents == 1 {
				rootRes = res
			} else {
				next[pi] = res.US()
			}
		})
		if parents == 1 {
			return rootRes, nil
		}
		level = next
	}
	return linalg.SVDTruncW(level[0], cfg.Rank, w), nil
}

// Embedding runs Factorize and returns X = U√Σ.
func Embedding(m *sparse.CSR, cfg Config) (*linalg.Dense, error) {
	root, err := Factorize(m, cfg)
	if err != nil {
		return nil, err
	}
	return root.USqrtS(), nil
}

// RightEmbeddingOf recovers Y = Ṽ√Σ (Ṽ = Σ⁻¹UᵀM, rows indexed by the n
// matrix columns) for an externally held root SVD over matrix m.
func RightEmbeddingOf(root *linalg.SVDResult, m *sparse.CSR) *linalg.Dense {
	return RightEmbeddingOfW(root, m, 1)
}

// RightEmbeddingOfW is RightEmbeddingOf with a worker budget for the
// O(nnz·d) sparse transpose-product.
func RightEmbeddingOfW(root *linalg.SVDResult, m *sparse.CSR, workers int) *linalg.Dense {
	y := m.TMulDenseW(root.U, workers)
	scale := make([]float64, len(root.S))
	for i, s := range root.S {
		if s > 0 {
			scale[i] = 1 / math.Sqrt(s)
		}
	}
	return y.MulDiag(scale)
}
