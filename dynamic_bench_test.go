// Dynamic-path benchmark (ISSUE 10 tentpole). `make bench-dynamic` runs
// TestEmitDynamicBench, which drives the same churnstress stream through
// the pipeline twice — recompute-only (SVDUpdate off) and with the
// Brand-style incremental update path on — and writes BENCH_DYNAMIC.json:
// per-batch ApplyEvents latency (p50/p99), the update hit rate
// BlocksUpdated/(BlocksUpdated+BlocksRebuilt), the fallback rate, and the
// p99 speedup of the update variant over the recompute baseline.
// BENCH_DYNAMIC_SHORT=1 shrinks the stream to a smoke-test size; `make
// ci` runs that variant to keep the harness from rotting without gating
// on machine-dependent numbers.
package treesvd

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/tree-svd/treesvd/internal/core"
	"github.com/tree-svd/treesvd/internal/dataset"
)

// dynamicBenchStream is the dynamic-path churnstress workload, shaped
// for the regime the incremental path is built for: wide blocks (few
// blocks over many columns, so one recompute is expensive), Dim covering
// the 40-source subset (the block rank never exceeds the row count, so
// an update's discarded energy is ~0 and the tail budget never trips),
// coarse r_max (cheap PPR maintenance and few touched rows per block,
// keeping the Brand core (r+t)×(r+t) small), and a δ tight enough that
// steady churn violates the trigger every few batches — otherwise both
// variants coast on the lazy skip and the comparison measures nothing.
func dynamicBenchStream(short bool) (*Graph, []int32, [][]Event, Config) {
	subset := []int32{0, 7, 19, 42, 77, 123, 256, 391, 477, 512,
		533, 561, 580, 601, 640, 700, 741, 790, 811, 850,
		877, 901, 933, 960, 991, 1020, 1051, 1080, 1111, 1140,
		1171, 1200, 1231, 1260, 1291, 1320, 1351, 1380, 1411, 1440}
	nodes, batches, batchSize := 1500, 160, 48
	if short {
		nodes, batches, batchSize = 1500, 5, 24
	}
	initial, stream := dataset.GenerateChurn(dataset.ChurnProfile{
		Nodes: nodes, MaxNodes: 1536, Degree: 5,
		Batches: batches, BatchSize: batchSize,
		SelfLoopFrac: 0.05, DeleteFrac: 0.2, DupFrac: 0.05, MissFrac: 0.05, GrowFrac: 0.02,
		BigBatch: -1,
		Protect:  subset,
		Seed:     11,
	})
	cfg := Config{Dim: 40, Branch: 4, Levels: 2, MaxNodes: 1536, Seed: 3,
		RMax:    0.05,  // coarse push: cheap PPR maintenance, few touched rows per block
		Delta:   0.003, // sensitive trigger: steady churn violates, deltas stay small
		Workers: runtime.NumCPU(),
		// Every violating block attempts the update; the tail budget
		// (default UpdateTailFrac) decides when accumulated discarded
		// energy forces a refreshing recompute.
		UpdateMaxRel: 1e6,
	}
	return initial, subset, stream, cfg
}

// dynamicBenchRecord is one row of BENCH_DYNAMIC.json.
type dynamicBenchRecord struct {
	Variant         string  `json:"variant"` // "recompute" or "update"
	Batches         int     `json:"batches"`
	Events          int     `json:"events"`
	ApplyP50Ns      int64   `json:"apply_p50_ns"`
	ApplyP99Ns      int64   `json:"apply_p99_ns"`
	BlocksRebuilt   uint64  `json:"blocks_rebuilt"`
	BlocksUpdated   uint64  `json:"blocks_updated"`
	UpdateFallbacks uint64  `json:"update_fallbacks"`
	BlockFactorP50  int64   `json:"block_factor_p50_ns"`
	BlockUpdateP50  int64   `json:"block_update_p50_ns,omitempty"`
	UpdateHitRate   float64 `json:"update_hit_rate"`
	FallbackRate    float64 `json:"fallback_rate"`
	P99Speedup      float64 `json:"p99_speedup_vs_recompute,omitempty"`
	Delta           float64 `json:"delta"`
	UpdateMaxRel    float64 `json:"update_max_rel"`
	UpdateTailFrac  float64 `json:"update_tail_frac"`
	DatasetSeed     int64   `json:"dataset_seed"`
	CPUs            int     `json:"cpus"`
	Short           bool    `json:"short,omitempty"`
}

// TestEmitDynamicBench writes the machine-readable update-vs-recompute
// A/B table when BENCH_DYNAMIC_OUT names an output path (a no-op under
// plain `go test`). Per-batch wall-clock latency is recorded directly —
// not testing.Benchmark — because the apply cost is stateful: batch i's
// violations depend on every batch before it, so both variants must pay
// the identical sequence from the identical starting state. Each variant
// runs three times (identical streams; the pipeline is deterministic)
// and reports the repetition with the lowest p99 — per-batch cost is
// deterministic, so min-over-reps isolates it from scheduler noise.
func TestEmitDynamicBench(t *testing.T) {
	out := os.Getenv("BENCH_DYNAMIC_OUT")
	if out == "" {
		t.Skip("set BENCH_DYNAMIC_OUT=path to emit BENCH_DYNAMIC.json")
	}
	short := os.Getenv("BENCH_DYNAMIC_SHORT") != ""
	reps := 3
	if short {
		reps = 1
	}

	runOnce := func(update bool) dynamicBenchRecord {
		initial, subset, stream, cfg := dynamicBenchStream(short)
		cfg.SVDUpdate = update
		emb, err := New(initial, subset, cfg)
		if err != nil {
			t.Fatal(err)
		}
		events := 0
		lat := make([]time.Duration, 0, len(stream))
		for i, b := range stream {
			start := time.Now()
			if _, err := emb.ApplyEvents(bgt, b); err != nil {
				t.Fatalf("update=%v batch %d: %v", update, i, err)
			}
			lat = append(lat, time.Since(start))
			events += len(b)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		m := emb.Metrics()
		rec := dynamicBenchRecord{
			Variant: "recompute", Batches: len(stream), Events: events,
			ApplyP50Ns:      lat[len(lat)/2].Nanoseconds(),
			ApplyP99Ns:      lat[len(lat)*99/100].Nanoseconds(),
			BlocksRebuilt:   m.BlocksRebuilt,
			BlocksUpdated:   m.BlocksUpdated,
			UpdateFallbacks: m.UpdateFallbacks,
			BlockFactorP50:  m.BlockFactor.P50.Nanoseconds(),
			BlockUpdateP50:  m.BlockUpdate.P50.Nanoseconds(),
			Delta:           cfg.Delta,
			UpdateMaxRel:    cfg.UpdateMaxRel,
			UpdateTailFrac:  core.DefaultUpdateTailFrac,
			DatasetSeed:     11,
			CPUs:            runtime.NumCPU(), Short: short,
		}
		if update {
			rec.Variant = "update"
			if n := m.BlocksUpdated + m.BlocksRebuilt; n > 0 {
				rec.UpdateHitRate = float64(m.BlocksUpdated) / float64(n)
			}
			if n := m.BlocksUpdated + m.UpdateFallbacks; n > 0 {
				rec.FallbackRate = float64(m.UpdateFallbacks) / float64(n)
			}
		}
		return rec
	}
	run := func(update bool) dynamicBenchRecord {
		best := runOnce(update)
		for r := 1; r < reps; r++ {
			if rec := runOnce(update); rec.ApplyP99Ns < best.ApplyP99Ns {
				best = rec
			}
		}
		return best
	}

	base := run(false)
	upd := run(true)
	if upd.ApplyP99Ns > 0 {
		upd.P99Speedup = float64(base.ApplyP99Ns) / float64(upd.ApplyP99Ns)
	}
	for _, rec := range []dynamicBenchRecord{base, upd} {
		t.Logf("%-9s p50 %-12s p99 %-12s rebuilt %-4d updated %-4d fallbacks %-3d hit %.2f factor-p50 %-10s update-p50 %s",
			rec.Variant, time.Duration(rec.ApplyP50Ns), time.Duration(rec.ApplyP99Ns),
			rec.BlocksRebuilt, rec.BlocksUpdated, rec.UpdateFallbacks, rec.UpdateHitRate,
			time.Duration(rec.BlockFactorP50), time.Duration(rec.BlockUpdateP50))
	}
	t.Logf("p99 speedup: %.2fx, update hit rate %.2f", upd.P99Speedup, upd.UpdateHitRate)

	data, err := json.MarshalIndent([]dynamicBenchRecord{base, upd}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote", out)
}
