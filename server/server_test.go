package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	treesvd "github.com/tree-svd/treesvd"
	"github.com/tree-svd/treesvd/client"
	"github.com/tree-svd/treesvd/internal/wire"
	"github.com/tree-svd/treesvd/server"
)

// buildGraph mirrors the root package's test helper: n nodes, every node
// with at least one out-edge, m edges total.
func buildGraph(rng *rand.Rand, n, m int) *treesvd.Graph {
	g := treesvd.NewGraphN(n)
	for v := int32(0); int(v) < n; v++ {
		for {
			u := int32(rng.Intn(n))
			if u != v && g.InsertEdge(v, u) {
				break
			}
		}
	}
	for g.NumEdges() < m {
		g.InsertEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return g
}

var testSubset = []int32{0, 3, 7, 11, 20, 33}

func newTestServer(t *testing.T, cfg treesvd.Config) (*treesvd.Embedder, *server.Server) {
	t.Helper()
	g := buildGraph(rand.New(rand.NewSource(11)), 40, 160)
	emb, err := treesvd.New(g, testSubset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(emb, server.Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return emb, srv
}

func sameMatrix(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
				return false
			}
		}
	}
	return true
}

// roundTrip drives every endpoint through the client SDK and checks the
// responses byte-for-byte against the in-process snapshot. Run for both
// codecs.
func roundTrip(t *testing.T, binary bool) {
	emb, srv := newTestServer(t, treesvd.Config{Dim: 6, RMax: 1e-3, MaxNodes: 64})
	opts := []client.Option{client.WithRetries(0)}
	if binary {
		opts = append(opts, client.WithBinary(true))
	}
	c := client.New(srv.URL(), opts...)
	ctx := context.Background()
	snap := emb.Snapshot()

	ver, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Version != snap.Version() || ver.NumNodes != snap.NumNodes() ||
		ver.SubsetSize != len(testSubset) || ver.Shards != emb.NumShards() {
		t.Fatalf("version = %+v, want snapshot version=%d nodes=%d subset=%d shards=%d",
			ver, snap.Version(), snap.NumNodes(), len(testSubset), emb.NumShards())
	}
	if ver.NumEdges != emb.Graph().NumEdges() {
		t.Errorf("version.NumEdges = %d, want %d", ver.NumEdges, emb.Graph().NumEdges())
	}

	// Recommend matches the in-process result exactly.
	want, err := snap.Recommend(testSubset[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Recommend(ctx, testSubset[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != snap.Version() || got.Source != testSubset[1] || len(got.Recs) != len(want) {
		t.Fatalf("recommend = %+v, want %d recs at version %d", got, len(want), snap.Version())
	}
	for i := range want {
		if got.Recs[i] != want[i] {
			t.Fatalf("rec[%d] = %+v, want %+v", i, got.Recs[i], want[i])
		}
	}

	// Oversized k truncates (the facade's contract, over the wire).
	big, err := c.Recommend(ctx, testSubset[1], 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Recs) >= 10_000 || len(big.Recs) == 0 {
		t.Fatalf("oversized k returned %d recs", len(big.Recs))
	}

	// Full subset embedding.
	x, err := c.Embedding(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if x.Version != snap.Version() || !sameMatrix(x.Rows, snap.Embedding()) {
		t.Fatal("embedding mismatch with snapshot")
	}
	if !binary {
		for i, v := range testSubset {
			if x.Nodes[i] != v {
				t.Fatalf("embedding nodes[%d] = %d, want %d", i, x.Nodes[i], v)
			}
		}
	}

	// One embedding row.
	row, err := c.EmbeddingRow(ctx, testSubset[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Rows) != 1 || !sameMatrix(row.Rows, snap.Embedding()[2:3]) {
		t.Fatal("embedding row mismatch")
	}

	// Right embedding, full and one row.
	y, err := c.RightEmbedding(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantY := snap.RightEmbedding()[:snap.NumNodes()]
	if y.Version != snap.Version() || !sameMatrix(y.Rows, wantY) {
		t.Fatal("right embedding mismatch with snapshot")
	}
	yrow, err := c.RightEmbeddingRow(ctx, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(yrow.Rows) != 1 || !sameMatrix(yrow.Rows, wantY[17:18]) {
		t.Fatal("right embedding row mismatch")
	}

	// Typed errors cross the wire.
	var ike *treesvd.InvalidKError
	if _, err := c.Recommend(ctx, testSubset[0], 0); !errors.As(err, &ike) || ike.K != 0 {
		t.Fatalf("k=0: want *InvalidKError{K:0}, got %v", err)
	}
	var nis *treesvd.NotInSubsetError
	if _, err := c.Recommend(ctx, 5, 3); !errors.As(err, &nis) || nis.Node != 5 || nis.Subset != len(testSubset) {
		t.Fatalf("non-subset source: want *NotInSubsetError{Node:5}, got %v", err)
	}
	nis = nil
	if _, err := c.EmbeddingRow(ctx, 5); !errors.As(err, &nis) || nis.Node != 5 {
		t.Fatalf("embedding row of non-subset node: want *NotInSubsetError, got %v", err)
	}
	var nre *treesvd.NodeRangeError
	if _, err := c.RightEmbeddingRow(ctx, 1000); !errors.As(err, &nre) || nre.Node != 1000 {
		t.Fatalf("right embedding row out of range: want *NodeRangeError, got %v", err)
	}

	// Ingest advances the version and the next read sees it.
	before := emb.Version()
	res, err := c.ApplyEvents(ctx, []treesvd.Event{
		{U: 40, V: 3, Type: treesvd.Insert},
		{U: 3, V: 41, Type: treesvd.Insert},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 1 || res.Events != 2 || res.Version <= before {
		t.Fatalf("apply = %+v, want 1 batch / 2 events / version > %d", res, before)
	}
	ver2, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ver2.Version != res.Version || ver2.NumNodes <= ver.NumNodes {
		t.Fatalf("post-ingest version = %+v, want version %d and more nodes than %d", ver2, res.Version, ver.NumNodes)
	}

	// An out-of-capacity event is rejected with the embedder's typed error
	// and applies nothing.
	nre = nil
	if _, err := c.ApplyEvents(ctx, []treesvd.Event{{U: 0, V: 500, Type: treesvd.Insert}}); !errors.As(err, &nre) {
		t.Fatalf("out-of-capacity ingest: want *NodeRangeError, got %v", err)
	}
	if emb.Version() != res.Version {
		t.Error("rejected ingest batch republished a snapshot")
	}

	// Multi-frame streaming ingest: each frame is its own batch.
	res2, err := c.ApplyEventBatches(ctx, [][]treesvd.Event{
		{{U: 1, V: 2, Type: treesvd.Insert}},
		{{U: 2, V: 1, Type: treesvd.Insert}, {U: 42, V: 0, Type: treesvd.Insert}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Batches != 2 || res2.Events != 3 {
		t.Fatalf("streamed apply = %+v, want 2 batches / 3 events", res2)
	}
}

func TestEndpointsRoundTripJSON(t *testing.T)   { roundTrip(t, false) }
func TestEndpointsRoundTripBinary(t *testing.T) { roundTrip(t, true) }

// TestIngestJSONBody exercises the raw JSON ingest form (no SDK): a
// well-formed batch applies, an unknown event type is a typed 400.
func TestIngestJSONBody(t *testing.T) {
	emb, srv := newTestServer(t, treesvd.Config{Dim: 4, RMax: 1e-3, MaxNodes: 64})
	before := emb.Version()

	body := `{"events":[{"u":40,"v":1,"type":"insert"},{"u":1,"v":0,"type":"delete"}]}`
	resp, err := http.Post(srv.URL()+"/v1/events", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", resp.StatusCode, data)
	}
	var apply struct {
		Batches int    `json:"batches"`
		Events  int    `json:"events"`
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(data, &apply); err != nil {
		t.Fatal(err)
	}
	if apply.Batches != 1 || apply.Events != 2 || apply.Version <= before {
		t.Fatalf("apply = %+v, want 1 batch / 2 events / version > %d", apply, before)
	}

	resp, err = http.Post(srv.URL()+"/v1/events", "application/json",
		strings.NewReader(`{"events":[{"u":0,"v":1,"type":"upsert"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(data, []byte(`"bad_request"`)) {
		t.Fatalf("unknown event type: HTTP %d: %s, want 400 bad_request", resp.StatusCode, data)
	}
}

// TestMetricsAndPprofMounted checks the obs registry and pprof share the
// serving mux, and that the HTTP request metrics appear on it.
func TestMetricsAndPprofMounted(t *testing.T) {
	_, srv := newTestServer(t, treesvd.Config{Dim: 4, RMax: 1e-3})
	c := client.New(srv.URL(), client.WithRetries(0))
	if _, err := c.Version(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL() + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	for _, want := range []string{
		`treesvd_http_requests_total{endpoint="version"}`,
		"treesvd_http_inflight",
		"treesvd_http_request_nanos",
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: HTTP %d", resp.StatusCode)
	}
}

// TestShutdownAndRestart closes a server and brings a fresh one up on the
// same embedder: the second New must reuse the registered metric set (a
// re-registration would panic) and serve normally.
func TestShutdownAndRestart(t *testing.T) {
	emb, srv := newTestServer(t, treesvd.Config{Dim: 4, RMax: 1e-3, MaxNodes: 64})
	c := client.New(srv.URL(), client.WithRetries(0))
	if _, err := c.Version(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Version(context.Background()); err == nil {
		t.Fatal("request succeeded after shutdown")
	}

	srv2 := server.New(emb, server.Options{})
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	c2 := client.New(srv2.URL(), client.WithRetries(0))
	ver, err := c2.Version(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ver.Version != emb.Version() {
		t.Fatalf("restarted server serves version %d, want %d", ver.Version, emb.Version())
	}
	if _, err := c2.ApplyEvents(context.Background(), []treesvd.Event{{U: 40, V: 0, Type: treesvd.Insert}}); err != nil {
		t.Fatalf("ingest after restart: %v", err)
	}
}

// TestShutdownDrainsInFlight holds a streaming ingest request open across
// Shutdown and checks the drain lets it finish cleanly instead of cutting
// the connection.
func TestShutdownDrainsInFlight(t *testing.T) {
	emb, srv := newTestServer(t, treesvd.Config{Dim: 4, RMax: 1e-3, MaxNodes: 128})
	c := client.New(srv.URL(), client.WithRetries(0))

	// A body that trickles in: the request is in flight when Shutdown
	// starts, and completes only after the last frame arrives.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, srv.URL()+"/v1/events", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-treesvd-frame")
	type postResult struct {
		status int
		err    error
	}
	posted := make(chan postResult, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			posted <- postResult{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		posted <- postResult{status: resp.StatusCode}
	}()

	// First frame goes through before shutdown begins.
	v0 := emb.Version()
	frame := encodeEventFrame(t, []treesvd.Event{{U: 40, V: 1, Type: treesvd.Insert}})
	if _, err := pw.Write(frame); err != nil {
		t.Fatal(err)
	}
	waitForVersionAbove(t, emb, v0)

	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Shutdown(ctx) }()

	// While draining, finish the in-flight request.
	time.Sleep(20 * time.Millisecond)
	if _, err := pw.Write(encodeEventFrame(t, []treesvd.Event{{U: 41, V: 2, Type: treesvd.Insert}})); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	res := <-posted
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("in-flight ingest during drain: status=%d err=%v, want clean 200", res.status, res.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := c.Version(context.Background()); err == nil {
		t.Fatal("server still accepting requests after drain")
	}
}

// encodeEventFrame builds one binary ingest frame.
func encodeEventFrame(t *testing.T, events []treesvd.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, wire.EncodeEvents(events)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitForVersionAbove(t *testing.T, emb *treesvd.Embedder, v uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for emb.Version() <= v {
		if time.Now().After(deadline) {
			t.Fatalf("version stuck at %d", emb.Version())
		}
		time.Sleep(time.Millisecond)
	}
}
