package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strings"
	"time"

	"github.com/tree-svd/treesvd/internal/graph"
)

// On-disk layout. A log is a directory of segment files
//
//	wal-<first seq, %016x>.log
//
// each starting with an 8-byte header (magic "TSWL" + uint32 LE format
// version) followed by records:
//
//	[4B uint32 LE payload length]
//	[8B uint64 LE batch sequence number]
//	[4B uint32 LE CRC32C over seq bytes ++ payload]
//	[payload]
//
// Sequence numbers are assigned by the writer, start at the value passed
// to NewWriter and increase by exactly 1 per record; recovery rejects any
// discontinuity. The CRC covers the sequence number so a flipped seq is
// caught even when the payload survives intact.
const (
	segMagic   = "TSWL"
	segVersion = 1
	segHdrLen  = 8
	recHdrLen  = 16
	// maxRecordLen bounds a record payload; a length beyond it is treated
	// as corruption (a torn or flipped length prefix), not an allocation.
	maxRecordLen = 1 << 28

	segPrefix = "wal-"
	segSuffix = ".log"
)

// castagnoli is the CRC32C polynomial table (the checksum used by every
// on-disk structure in this package).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when the WAL writer fsyncs appended records.
type SyncPolicy int

const (
	// SyncBatch fsyncs once per Append: every acknowledged batch is
	// durable. The default.
	SyncBatch SyncPolicy = iota
	// SyncInterval fsyncs every Options.SyncEvery appends: a crash can
	// lose up to SyncEvery-1 acknowledged batches, never corrupt state.
	SyncInterval
	// SyncNone never fsyncs on append (only on rotation and close); the
	// OS decides when data reaches the disk.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures a Writer.
type Options struct {
	// SegmentSize rotates to a new segment file once the current one
	// exceeds this many bytes (default 4 MiB).
	SegmentSize int64
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// SyncEvery is the append period of SyncInterval (default 8).
	SyncEvery int
	// Met receives the writer's durability counters. Pass the same
	// instance across writer re-creations to accumulate over the log's
	// lifetime; nil allocates a private one.
	Met *Metrics
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 8
	}
	if o.Met == nil {
		o.Met = &Metrics{}
	}
	return o
}

// segName returns the file name of the segment whose first record is seq.
func segName(seq uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix) }

// parseSegName extracts the first-record seq from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(hexpart, "%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment first-seqs in dir, ascending.
func listSegments(fs FS, dir string) ([]uint64, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, n := range names {
		if seq, ok := parseSegName(n); ok {
			seqs = append(seqs, seq)
		}
	}
	// ReadDir is lexical and the names are fixed-width hex, so seqs is
	// already ascending.
	return seqs, nil
}

// HasState reports whether dir contains any checkpoint or log segment.
func HasState(fs FS, dir string) (bool, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			return true, nil
		}
		if _, ok := parseCkptName(n); ok {
			return true, nil
		}
	}
	return false, nil
}

// Writer appends checksummed records to a segmented log. It is not safe
// for concurrent use; the durable embedder serializes appends. Any error
// from the filesystem poisons the writer — every later call returns the
// same error — because a partially written record makes the tail position
// untrustworthy. Recovery (a fresh Recover + NewWriter) is the only way
// forward, mirroring a process restart.
type Writer struct {
	fs   FS
	dir  string
	opt  Options
	f    File
	name string
	size int64
	next uint64
	seen int // appends since the last fsync (SyncInterval bookkeeping)
	err  error
}

// NewWriter opens a log writer in dir that will assign sequence number
// nextSeq to its first record. It always starts a fresh segment: run
// Recover first so a torn tail left by a crash has been truncated and a
// zero-record tail segment removed — the new segment's name is derived
// from nextSeq and must not collide with a live one.
func NewWriter(fs FS, dir string, nextSeq uint64, opt Options) (*Writer, error) {
	w := &Writer{fs: fs, dir: dir, opt: opt.withDefaults(), next: nextSeq}
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

// openSegment creates the segment file for w.next and makes its existence
// durable (header write + fsync + directory fsync).
func (w *Writer) openSegment() error {
	name := filepath.Join(w.dir, segName(w.next))
	f, err := w.fs.Create(name)
	if err != nil {
		return err
	}
	var hdr [segHdrLen]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := syncTimed(f, w.opt.Met); err != nil {
		f.Close()
		return err
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.name, w.size, w.seen = f, name, segHdrLen, 0
	return nil
}

// syncTimed fsyncs f, recording the call and its latency into met.
func syncTimed(f File, met *Metrics) error {
	start := time.Now()
	err := f.Sync()
	met.Fsyncs.Inc()
	met.FsyncNanos.ObserveSince(start)
	return err
}

// Append writes one record and applies the fsync policy. It returns the
// sequence number assigned to the record; the record is durable according
// to the policy once Append returns nil.
func (w *Writer) Append(payload []byte) (uint64, error) {
	if w.err != nil {
		return 0, w.err
	}
	if len(payload) > maxRecordLen {
		return 0, fmt.Errorf("wal: record payload %d bytes exceeds the %d limit", len(payload), maxRecordLen)
	}
	start := time.Now()
	recLen := int64(recHdrLen + len(payload))
	if w.size > segHdrLen && w.size+recLen > w.opt.SegmentSize {
		if err := w.rotate(); err != nil {
			w.err = err
			return 0, err
		}
	}
	rec := make([]byte, recHdrLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[4:], w.next)
	crc := crc32.Update(0, castagnoli, rec[4:12])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(rec[12:], crc)
	copy(rec[recHdrLen:], payload)
	if _, err := w.f.Write(rec); err != nil {
		w.err = err
		return 0, err
	}
	w.size += recLen
	w.seen++
	sync := false
	switch w.opt.Sync {
	case SyncBatch:
		sync = true
	case SyncInterval:
		sync = w.seen >= w.opt.SyncEvery
	}
	if sync {
		if err := syncTimed(w.f, w.opt.Met); err != nil {
			w.err = err
			return 0, err
		}
		w.seen = 0
	}
	seq := w.next
	w.next++
	w.opt.Met.Appends.Inc()
	w.opt.Met.AppendedBytes.Add(uint64(recLen))
	w.opt.Met.AppendNanos.ObserveSince(start)
	return seq, nil
}

// rotate seals the current segment (fsync + close) and opens the next
// one. The old segment is complete on disk before the new name appears.
func (w *Writer) rotate() error {
	if err := syncTimed(w.f, w.opt.Met); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.opt.Met.Rotations.Inc()
	return w.openSegment()
}

// Sync forces an fsync of the current segment regardless of policy.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := syncTimed(w.f, w.opt.Met); err != nil {
		w.err = err
		return err
	}
	w.seen = 0
	return nil
}

// NextSeq returns the sequence number the next Append will assign.
func (w *Writer) NextSeq() uint64 { return w.next }

// Close fsyncs and closes the current segment. The writer is unusable
// afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	w.err = fmt.Errorf("wal: writer closed")
	if err := syncTimed(w.f, w.opt.Met); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// PruneSegments removes every segment whose records all have seq ≤ upTo.
// The caller must only pass an upTo covered by a committed checkpoint:
// pruned records are gone for good. The newest segment is never removed
// (the writer may hold it open).
func PruneSegments(fs FS, dir string, upTo uint64) error {
	seqs, err := listSegments(fs, dir)
	if err != nil {
		return err
	}
	removed := false
	for i := 0; i+1 < len(seqs); i++ {
		// Segment i spans [seqs[i], seqs[i+1]-1].
		if seqs[i+1] <= upTo+1 {
			if err := fs.Remove(filepath.Join(dir, segName(seqs[i]))); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return fs.SyncDir(dir)
	}
	return nil
}

// EncodeEvents serializes a batch of edge events as a WAL record payload:
// 9 bytes per event (u, v as int32 LE plus the type byte).
func EncodeEvents(events []graph.Event) []byte {
	buf := make([]byte, 9*len(events))
	for i, ev := range events {
		off := 9 * i
		binary.LittleEndian.PutUint32(buf[off:], uint32(ev.U))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(ev.V))
		buf[off+8] = byte(ev.Type)
	}
	return buf
}

// DecodeEvents parses an EncodeEvents payload.
func DecodeEvents(payload []byte) ([]graph.Event, error) {
	if len(payload)%9 != 0 {
		return nil, fmt.Errorf("wal: event payload length %d is not a multiple of 9", len(payload))
	}
	events := make([]graph.Event, len(payload)/9)
	for i := range events {
		off := 9 * i
		typ := graph.EventType(payload[off+8])
		if typ != graph.Insert && typ != graph.Delete {
			return nil, fmt.Errorf("wal: event %d has unknown type %d", i, typ)
		}
		events[i] = graph.Event{
			U:    int32(binary.LittleEndian.Uint32(payload[off:])),
			V:    int32(binary.LittleEndian.Uint32(payload[off+4:])),
			Type: typ,
		}
	}
	return events, nil
}
